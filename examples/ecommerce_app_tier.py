#!/usr/bin/env python3
"""The paper's application-tier example (Fig. 6).

Builds the full requirement-space map for the e-commerce application
tier: for a sweep of load levels, the Pareto frontier of (cost,
downtime) designs, grouped into the paper's design families
(resource, contract, n_extra, n_spare).

Run:  python examples/ecommerce_app_tier.py
"""

from repro import Duration, SearchLimits
from repro.core import DesignEvaluator, build_requirement_map
from repro.core.report import frontier_table, requirement_grid
from repro.model import ServiceModel
from repro.spec.paper import ecommerce_service, paper_infrastructure

LOADS = [400, 800, 1600, 3200, 5000]
DOWNTIME_GRID = [5000, 1000, 300, 100, 30, 10, 3, 1, 0.3, 0.1]


def main():
    infrastructure = paper_infrastructure()
    service = ServiceModel(
        "app-tier", [ecommerce_service().tier("application")])
    evaluator = DesignEvaluator(infrastructure, service)

    print("building requirement-space map for loads %s ..." % LOADS)
    req_map = build_requirement_map(
        evaluator, "application", loads=LOADS,
        limits=SearchLimits(max_redundancy=4, spare_policy="cold"))

    # Per-load Pareto frontiers (one row per optimal family).
    for load in (400, 1600, 5000):
        search_frontier = [point.design for point in req_map.at_load(load)]
        print()
        print(frontier_table(search_frontier,
                             title="Pareto frontier at load %d" % load))

    # The Fig. 6 style picture: which family is optimal where.
    print()
    print(requirement_grid(req_map, DOWNTIME_GRID))

    # The paper's observations, recomputed:
    print()
    print("observations:")
    point = req_map.optimal_for(1000, Duration.minutes(100)) \
        if 1000 in LOADS else None
    families_low = {p.family for p in req_map.at_load(400)}
    families_high = {p.family for p in req_map.at_load(3200)}
    from repro.core.families import DesignFamily
    gold = DesignFamily("rC", "gold", 0, 0)
    print("  * families on at least one frontier: %d"
          % len(req_map.family_curves()))
    print("  * gold contract optimal at load 400: %s"
          % (gold in families_low))
    print("  * gold contract optimal at load 3200: %s "
          "(displaced by an extra resource, as the paper notes)"
          % (gold in families_high))
    # The paper: "the more powerful machineB is never selected."  Check
    # it the way a user would: is machineB ever the *optimal* choice at
    # any requirement point in the practical range?  (machineB designs
    # do appear deep in the over-provisioned tail of the Pareto
    # frontiers, but no requirement in the paper's range selects them.)
    machineB_optimal = 0
    for load in LOADS:
        for minutes in DOWNTIME_GRID:
            point = req_map.optimal_for(load, Duration.minutes(minutes))
            if point is not None and point.family.resource in ("rE",
                                                               "rF"):
                machineB_optimal += 1
    print("  * requirement points where machineB is optimal: %d "
          "(the paper: machineB is never selected)" % machineB_optimal)


if __name__ == "__main__":
    main()
