#!/usr/bin/env python3
"""Designing on your own infrastructure, written in the spec DSL.

Shows the full user workflow: author an infrastructure model and a
service model as text (the paper's Fig. 3/4 format), parse them, and
run the design engine -- including a finite batch job with a snapshot
mechanism, and a comparison of the three availability engines on the
chosen design.

Run:  python examples/custom_infrastructure.py
"""

from repro import (Aved, Duration, JobRequirements, SearchLimits,
                   ServiceRequirements)
from repro.availability import (AnalyticEngine, MarkovEngine,
                                SimulationEngine)
from repro.core import DesignEvaluator
from repro.expr import Expression
from repro.model import OverheadModel
from repro.spec import DictResolver, parse_infrastructure, parse_service

INFRASTRUCTURE = """
\\\\ A small shop: commodity nodes, one support contract, snapshots.
component=node_hw cost([inactive,active])=[1800 2000]
 failure=hard mtbf=500d mttr=<support> detect_time=90s
 failure=flaky mtbf=45d mttr=0 detect_time=10s
component=node_os cost=0
 failure=crash mtbf=60d mttr=0 detect_time=5s
component=api_server cost([inactive,active])=[0 350]
 failure=crash mtbf=30d mttr=0 detect_time=5s
component=worker cost=0 loss_window=<snapshot>
 failure=crash mtbf=30d mttr=0 detect_time=5s

mechanism=support
 param=level range=[nbd,sameday,fourhour]
 cost(level)=[250 600 1400]
 mttr(level)=[30h 9h 4h]
mechanism=snapshot
 param=interval range=[30s-4h;*1.3]
 cost=0
 loss_window=interval

resource=api_node reconfig_time=20s
 component=node_hw depend=null startup=45s
 component=node_os depend=node_hw startup=90s
 component=api_server depend=node_os startup=15s
resource=worker_node reconfig_time=5s
 component=node_hw depend=null startup=45s
 component=node_os depend=node_hw startup=90s
 component=worker depend=node_os startup=5s
"""

API_SERVICE = """
application=api
tier=api
 resource=api_node sizing=dynamic failurescope=resource
  nActive=[1-100,+1] performance=expr:120*n
"""

BATCH_SERVICE = """
application=nightly jobsize=2000
tier=workers
 resource=worker_node sizing=static failurescope=tier
  nActive=[1-100,+1] performance=expr:(40*n)/(1+0.02*n)
  mechanism=snapshot mperformance(interval,n)=snapshot-cost.dat
"""


class SnapshotOverhead(OverheadModel):
    """Snapshots cost ~3 compute-minutes each: slowdown 1 + 3/interval."""

    expression = Expression("1 + 3/cpi")

    def factor(self, settings, n_active):
        minutes = Duration.parse(settings["interval"]).as_minutes
        return self.expression(cpi=minutes)


def main():
    infrastructure = parse_infrastructure(INFRASTRUCTURE)
    api = parse_service(API_SERVICE)
    batch = parse_service(
        BATCH_SERVICE,
        DictResolver(overhead={"snapshot-cost.dat": SnapshotOverhead()}))

    print("== always-on API service ==")
    engine = Aved(infrastructure, api,
                  limits=SearchLimits(max_redundancy=5, spare_policy="all"))
    for minutes in (500, 50, 5):
        outcome = engine.design(ServiceRequirements(
            600, Duration.minutes(minutes)))
        print("  downtime <= %4g min/yr: %-55s $%s"
              % (minutes, outcome.design.describe(),
                 format(round(outcome.annual_cost), ",d")))

    print()
    print("== nightly batch job (2000 units, snapshots) ==")
    job_engine = Aved(infrastructure, batch,
                      limits=SearchLimits(max_redundancy=6))
    for hours in (4, 8, 24):
        outcome = job_engine.design(JobRequirements(Duration.hours(hours)))
        tier = outcome.design.tiers[0]
        snap = tier.mechanism_config("snapshot")
        print("  finish in <= %2dh: %s x%d (+%d spare), snapshot every "
              "%s, support=%s, job time %.1fh, $%s/yr"
              % (hours, tier.resource, tier.n_active, tier.n_spare,
                 snap.settings["interval"].format(),
                 tier.mechanism_config("support").settings["level"],
                 outcome.evaluation.job_time.expected_time.as_hours,
                 format(round(outcome.annual_cost), ",d")))

    print()
    print("== engine ablation on the chosen API design ==")
    outcome = engine.design(ServiceRequirements(600,
                                                Duration.minutes(50)))
    evaluator = DesignEvaluator(infrastructure, api)
    models = [evaluator.tier_model(tier, 600)
              for tier in outcome.design.tiers]
    for availability_engine in (MarkovEngine(), AnalyticEngine(),
                                SimulationEngine(years=500, seed=42)):
        result = availability_engine.evaluate(models)
        print("  %-12s downtime estimate: %8.2f min/yr"
              % (availability_engine.name, result.downtime_minutes))


if __name__ == "__main__":
    main()
